// Benchmarks: one Benchmark per experiment of EXPERIMENTS.md (E1–E10),
// exercising the operation each experiment measures, plus micro
// benchmarks of the hot paths. Custom metrics report the experiment's
// headline quantity (k, stretch, label words, hops) so `go test -bench`
// regenerates the numbers EXPERIMENTS.md records.
package pathsep_test

import (
	"math"
	"math/rand"
	"testing"

	"pathsep/internal/baseline"
	"pathsep/internal/core"
	"pathsep/internal/doubling"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/hardness"
	"pathsep/internal/labeling"
	"pathsep/internal/oracle"
	"pathsep/internal/routing"
	"pathsep/internal/shortest"
	"pathsep/internal/smallworld"
)

// E1: separator construction per graph class (Theorem 1 shape).

func BenchmarkE1SeparatorGrid(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	r := embed.Grid(32, 32, graph.UniformWeights(1, 4), rng)
	b.ResetTimer()
	maxK := 0
	for i := 0; i < b.N; i++ {
		dec, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r})
		if err != nil {
			b.Fatal(err)
		}
		maxK = dec.MaxK
	}
	b.ReportMetric(float64(maxK), "maxK")
}

func BenchmarkE1SeparatorApollonian(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	r := embed.Apollonian(1024, graph.UniformWeights(1, 4), rng)
	b.ResetTimer()
	maxK := 0
	for i := 0; i < b.N; i++ {
		dec, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r})
		if err != nil {
			b.Fatal(err)
		}
		maxK = dec.MaxK
	}
	b.ReportMetric(float64(maxK), "maxK")
}

func BenchmarkE1SeparatorTree(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomTree(4096, graph.UniformWeights(1, 4), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Decompose(g, core.Options{Strategy: core.TreeCentroid{}}); err != nil {
			b.Fatal(err)
		}
	}
}

// E2: strong center-bag separators on treewidth-r graphs (Theorem 7).

func BenchmarkE2TreewidthCenterBag(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := graph.KTree(1024, 4, graph.UniformWeights(1, 3), rng)
	b.ResetTimer()
	paths := 0
	for i := 0; i < b.N; i++ {
		sep, err := (core.CenterBag{}).Separate(core.Input{G: g})
		if err != nil {
			b.Fatal(err)
		}
		paths = sep.NumPaths()
	}
	b.ReportMetric(float64(paths), "paths")
}

// E3: certified phased separator on the mesh+universal family
// (Theorem 6(3) vs Theorem 1).

func BenchmarkE3PhasedMeshUniversal(b *testing.B) {
	k := 0
	for i := 0; i < b.N; i++ {
		var err error
		k, err = hardness.MeshUniversalPhasedK(16)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(k), "phasedK")
	b.ReportMetric(float64(hardness.MeshUniversalStrongLB(16)), "strongLB")
}

// E4: oracle build and query (Theorem 2).

func BenchmarkE4OracleBuildExact(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	r := embed.Grid(16, 16, graph.UniformWeights(1, 4), rng)
	dec, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oracle.Build(dec, oracle.Options{Epsilon: 0.25, Mode: oracle.CoverExact}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4OracleBuildPortal(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	r := embed.Grid(32, 32, graph.UniformWeights(1, 4), rng)
	dec, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oracle.Build(dec, oracle.Options{Epsilon: 0.25, Mode: oracle.CoverPortal}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4OracleQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	r := embed.Grid(32, 32, graph.UniformWeights(1, 4), rng)
	dec, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r})
	if err != nil {
		b.Fatal(err)
	}
	o, err := oracle.Build(dec, oracle.Options{Epsilon: 0.25, Mode: oracle.CoverPortal})
	if err != nil {
		b.Fatal(err)
	}
	n := r.G.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Query(i%n, (i*31)%n)
	}
}

func BenchmarkE4BaselineDijkstraQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	r := embed.Grid(32, 32, graph.UniformWeights(1, 4), rng)
	ex := &baseline.Exact{G: r.G}
	n := r.G.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Query(i%n, (i*31)%n)
	}
}

func BenchmarkE4BaselineTZBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	r := embed.Grid(32, 32, graph.UniformWeights(1, 4), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.BuildTZ(r.G, 2, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// E5: label serialization (Theorem 2's label-size accounting).

func BenchmarkE5LabelEncodeDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	r := embed.Grid(16, 16, graph.UniformWeights(1, 4), rng)
	dec, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r})
	if err != nil {
		b.Fatal(err)
	}
	o, err := oracle.Build(dec, oracle.Options{Epsilon: 0.25, Mode: oracle.CoverExact})
	if err != nil {
		b.Fatal(err)
	}
	maxBits := 0
	for v := range o.Labels {
		if bits := o.Labels[v].Bits(); bits > maxBits {
			maxBits = bits
		}
	}
	b.ReportMetric(float64(maxBits), "maxLabelBits")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := o.Labels[i%len(o.Labels)].Encode()
		if _, err := oracle.DecodeLabel(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// E6: compact routing (abstract item 3).

func BenchmarkE6RouteGrid(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	r := embed.Grid(24, 24, graph.UniformWeights(1, 4), rng)
	dec, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r})
	if err != nil {
		b.Fatal(err)
	}
	router, err := routing.Build(dec, routing.Options{Epsilon: 0.25})
	if err != nil {
		b.Fatal(err)
	}
	n := r.G.N()
	b.ReportMetric(float64(router.MaxTableWords()), "maxTableWords")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := router.Route(i%n, (i*31)%n, 50*n); !ok {
			b.Fatal("undelivered")
		}
	}
}

// E7: small-world augmentation and greedy routing (Theorem 3).

func BenchmarkE7AugmentPathSeparator(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	r := embed.Grid(24, 24, graph.UniformWeights(1, 2), rng)
	dec, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := smallworld.Augment(dec, smallworld.ModelPathSeparator, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7GreedyRoute(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	r := embed.Grid(24, 24, graph.UniformWeights(1, 2), rng)
	dec, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r})
	if err != nil {
		b.Fatal(err)
	}
	a, err := smallworld.Augment(dec, smallworld.ModelPathSeparator, rng)
	if err != nil {
		b.Fatal(err)
	}
	st := smallworld.Experiment(a, 50, rng, nil)
	b.ReportMetric(st.MeanHops, "meanHops")
	g := a.G
	n := g.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tgt := (i*31 + 7) % n
		distT := shortest.Dijkstra(g, tgt).Dist
		smallworld.GreedyRoute(a, i%n, tgt, distT, 10*n)
	}
}

// E8: Note 2 variant on unweighted grids.

func BenchmarkE8Note2Variant(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	r := embed.Grid(20, 20, graph.UnitWeights(), rng)
	dec, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		a, err := smallworld.Augment(dec, smallworld.ModelClosestSeparator, rng)
		if err != nil {
			b.Fatal(err)
		}
		st := smallworld.Experiment(a, 20, rng, nil)
		mean = st.MeanHops
	}
	b.ReportMetric(mean, "meanHops")
}

// E9: doubling-separator oracle on the 3-D mesh (Theorem 8).

func BenchmarkE9DoublingOracle(b *testing.B) {
	tr, err := doubling.DecomposeMesh3D(6, 6, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var o *doubling.Oracle
	for i := 0; i < b.N; i++ {
		o, err = doubling.BuildOracle(tr, 0.2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(o.MaxLabelLandmarks()), "maxLabel")
}

func BenchmarkE9DoublingQuery(b *testing.B) {
	tr, err := doubling.DecomposeMesh3D(6, 6, 6)
	if err != nil {
		b.Fatal(err)
	}
	o, err := doubling.BuildOracle(tr, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	n := tr.G.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Query(i%n, (i*31)%n)
	}
}

// E10: sparse hard family (Theorem 5).

func BenchmarkE10SparseGreedyK(b *testing.B) {
	g := hardness.SparseHard(1024)
	b.ResetTimer()
	k := 0
	for i := 0; i < b.N; i++ {
		var err error
		k, err = hardness.MeasureGreedyK(g)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(k), "greedyK")
	b.ReportMetric(math.Sqrt(1024), "sqrtN")
}

// Micro benchmarks of the hot paths.

func BenchmarkDijkstraGrid64x64(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	r := embed.Grid(64, 64, graph.UniformWeights(1, 4), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shortest.Dijkstra(r.G, i%r.G.N())
	}
}

func BenchmarkInducedSubgraph(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	g := graph.ConnectedGNM(4096, 12288, graph.UnitWeights(), rng)
	half := make([]int, 0, 2048)
	for v := 0; v < 4096; v += 2 {
		half = append(half, v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.Induced(g, half)
	}
}

func BenchmarkTriangulateGrid(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	r := embed.Grid(32, 32, graph.UnitWeights(), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := embed.Triangulate(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanarizeGrid(b *testing.B) {
	g := graph.Mesh3D(20, 20, 1, graph.UnitWeights(), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := embed.Planarize(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeLabelingBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	g := graph.RandomTree(4096, graph.UniformWeights(1, 4), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := labeling.BuildTree(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeLabelingQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	g := graph.RandomTree(4096, graph.UniformWeights(1, 4), rng)
	l, err := labeling.BuildTree(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Query(i%4096, (i*31)%4096)
	}
}
