// Parallel-build benchmarks and the make-check speedup gate.
//
// BenchmarkParallelBuild times decomposition + oracle construction of the
// 4k-vertex grid at workers=1 (the serial reference) and workers=max.
//
// TestParallelBuildSpeedupGate (run with BENCH_PARALLEL_GATE=1) is the CI
// gate: with GOMAXPROCS >= 4 the parallel build must be >= 1.5x the
// serial build — a hard failure, not a skip — recorded in
// BENCH_parallel.json. On narrower machines the pool cannot reliably
// demonstrate a 1.5x win, so the gate records the measurement and stamps
// the JSON with an explicit "skipped": "single-core" marker instead of
// silently passing.
package pathsep_test

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"pathsep/internal/core"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/oracle"
)

// buildParallel runs the full pipeline (decompose + portal oracle) on the
// 64x64 grid with the given pool width.
func buildParallel(tb testing.TB, workers int) {
	tb.Helper()
	rng := rand.New(rand.NewSource(17))
	r := embed.Grid(64, 64, graph.UniformWeights(1, 4), rng)
	dec, err := core.Decompose(r.G, core.Options{Strategy: core.Auto{}, Rot: r, Workers: workers})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := oracle.Build(dec, oracle.Options{Epsilon: 0.25, Mode: oracle.CoverPortal, Workers: workers}); err != nil {
		tb.Fatal(err)
	}
}

func BenchmarkParallelBuild(b *testing.B) {
	b.Run("Workers1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buildParallel(b, 1)
		}
	})
	b.Run("WorkersMax", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buildParallel(b, 0)
		}
	})
}

func TestParallelBuildSpeedupGate(t *testing.T) {
	if os.Getenv("BENCH_PARALLEL_GATE") != "1" {
		t.Skip("set BENCH_PARALLEL_GATE=1 to run the parallel speedup gate")
	}

	time := func(workers int) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				buildParallel(b, workers)
			}
		})
		return float64(res.T.Nanoseconds()) / float64(res.N)
	}
	serial := time(1)
	parallel := time(0)
	speedup := serial / parallel

	enforced := runtime.GOMAXPROCS(0) >= 4
	out := map[string]interface{}{
		"grid":               "64x64",
		"gomaxprocs":         runtime.GOMAXPROCS(0),
		"serial_ns_per_op":   serial,
		"parallel_ns_per_op": parallel,
		"speedup":            speedup,
		"required_speedup":   1.5,
		"gate_enforced":      enforced,
	}
	if !enforced {
		out["skipped"] = "single-core"
	}
	f, err := os.Create("BENCH_parallel.json")
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_parallel.json: serial=%.0fns parallel=%.0fns speedup=%.2fx", serial, parallel, speedup)

	if !enforced {
		t.Skipf("GOMAXPROCS=%d < 4: machine too narrow to demonstrate parallel speedup; measurement recorded with skipped=single-core marker, ratio not enforced", runtime.GOMAXPROCS(0))
	}
	if speedup < 1.5 {
		t.Fatalf("parallel build speedup %.2fx < required 1.5x (serial %.0fns, parallel %.0fns)", speedup, serial, parallel)
	}
}
