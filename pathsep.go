// Package pathsep is a Go implementation of "Object Location Using Path
// Separators" (Abraham & Gavoille, PODC 2006): k-path separators
// (Definition 1) for trees, bounded-treewidth, planar-embedded and
// arbitrary weighted graphs, and the object-location structures built on
// them — (1+ε)-approximate distance labels and oracles (Theorem 2),
// labeled compact routing (abstract item 3), small-world augmentation
// with poly-logarithmic greedy routing (Theorem 3), and (k,α)-doubling
// separators for 3-D meshes (Section 5.3, Theorem 8).
//
// Quick start:
//
//	b := pathsep.NewBuilder(4)
//	b.AddEdge(0, 1, 1.0)
//	b.AddEdge(1, 2, 2.0)
//	b.AddEdge(2, 3, 1.5)
//	g := b.Build()
//	dec, _ := pathsep.Decompose(g, pathsep.Options{})
//	orc, _ := pathsep.NewOracle(dec, pathsep.OracleOptions{Epsilon: 0.1})
//	dist := orc.Query(0, 3) // within (1+0.1) of the true distance
//
// The heavy lifting lives in the internal packages; this package is the
// stable facade. Internal subsystem layout:
//
//	internal/graph      graphs, generators, components
//	internal/embed      planar embeddings (rotation systems)
//	internal/core       k-path separators + decomposition tree
//	internal/oracle     Theorem 2 distance labels and oracle
//	internal/routing    compact routing scheme
//	internal/smallworld Section 4 augmentation + greedy routing
//	internal/doubling   Section 5.3 doubling separators
//	internal/labeling   exact tree distance labels (centroid decomposition)
//	internal/baseline   exact / ALT / Thorup–Zwick comparison oracles
//	internal/hardness   Section 5 lower-bound instances and verifiers
package pathsep

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"

	"pathsep/internal/core"
	"pathsep/internal/doubling"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/labeling"
	"pathsep/internal/obs"
	"pathsep/internal/oracle"
	"pathsep/internal/par"
	"pathsep/internal/routing"
	"pathsep/internal/smallworld"
)

// Metrics is the observability registry: atomic counters, gauges and
// fixed-bucket histograms that the decomposition, oracle, routing and
// small-world layers feed when one is attached via the option structs.
// A nil *Metrics disables all instrumentation at zero cost (no
// allocations on any hot path). Snapshot() / WriteJSON serialize it.
type Metrics = obs.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.New() }

// MetricsSnapshot is a point-in-time JSON-serializable copy of a Metrics
// registry.
type MetricsSnapshot = obs.Snapshot

// DecompositionTrace records the decomposition recursion as a tree of
// labeled, timed nodes (one per decomposition node); render it with
// WriteIndented.
type DecompositionTrace = obs.Trace

// NewDecompositionTrace returns an empty trace.
func NewDecompositionTrace() *DecompositionTrace { return obs.NewTrace() }

// ServeDebug binds addr and serves the observability endpoints for m on
// a private mux in the background: /metrics (Prometheus text format),
// /debug/vars (expvar-style JSON with the snapshot under "pathsep") and
// /debug/pprof. It returns once the listener is bound; shut it down with
// the returned server's Shutdown or Close, then wait on the done channel
// for the serve goroutine to exit.
func ServeDebug(addr string, m *Metrics) (*http.Server, <-chan struct{}, error) {
	return obs.Serve(addr, m)
}

// WriteMetricsPrometheus writes m in the Prometheus text exposition
// format (version 0.0.4), sorted by metric name.
func WriteMetricsPrometheus(w io.Writer, m *Metrics) error { return m.WritePrometheus(w) }

// SlowQuerySampler retains the N slowest query exemplars (u, v, dist,
// ns); attach one to a FlatOracle with SetSlowSampler. The nil sampler
// discards everything at zero cost.
type SlowQuerySampler = obs.SlowQuerySampler

// QueryExemplar is one retained slow-query sample.
type QueryExemplar = obs.QueryExemplar

// NewSlowQuerySampler returns a sampler retaining the n slowest queries.
func NewSlowQuerySampler(n int) *SlowQuerySampler { return obs.NewSlowQuerySampler(n) }

// Graph is a weighted undirected graph; build one with NewBuilder or a
// generator.
type Graph = graph.Graph

// Builder accumulates edges for a Graph.
type Builder = graph.Builder

// WeightFn assigns generator edge weights.
type WeightFn = graph.WeightFn

// Embedding is a planar combinatorial embedding (rotation system).
type Embedding = embed.Rotation

// Decomposition is the recursive k-path separator decomposition tree.
type Decomposition = core.Tree

// Separator is a k-path separator (Definition 1 of the paper).
type Separator = core.Separator

// Oracle is the Theorem 2 (1+ε)-approximate distance oracle. Besides
// distances (Query), it reports witness paths: QueryPath(u, v, buf)
// returns a u-to-v walk whose weight is exactly the reported distance,
// assembled from the per-portal parent links recorded at build time.
type Oracle = oracle.Oracle

// Label is a vertex's distance label (the distributed form of the oracle).
type Label = oracle.Label

// FlatOracle is the compiled read-only serving form of an Oracle: a
// struct-of-arrays layout with one contiguous portal pool, CSR entry
// offsets and interned separator-path keys. Build one with
// Oracle.Freeze(); queries are goroutine-safe, allocation-free and
// bit-identical to the pointer form. FlatOracle.QueryBatch answers a
// slice of pairs into a caller-owned buffer, fanning out over the worker
// pool. FlatOracle.QueryPath / QueryPathBatch report witness paths into
// caller buffers (allocation-free once the buffers are warm) when the
// image carries path records; distance-only images (wire format v1)
// answer ErrNoPathData.
type FlatOracle = oracle.Flat

// ErrNoPathData is answered by FlatOracle.QueryPath when the decoded
// image is distance-only (wire format v1, or a pointer oracle built
// before path reporting): distances still work, witness paths are not
// recorded. Test with errors.Is.
var ErrNoPathData = oracle.ErrNoPathData

// QueryPair is one (U, V) query of a FlatOracle batch.
type QueryPair = oracle.Pair

// Router is the compact routing scheme.
type Router = routing.Router

// Augmented is a graph plus one long-range contact per vertex (Section 4).
type Augmented = smallworld.Augmented

// NewBuilder returns a Builder pre-sized for n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// Strategy selects how separators are computed per decomposition node.
type Strategy int

const (
	// StrategyAuto dispatches per node: trees use the centroid, embedded
	// graphs the planar fundamental-cycle strategy, narrow graphs the
	// center bag, everything else the greedy shortest-path-tree strategy.
	StrategyAuto Strategy = iota
	// StrategyTreeCentroid requires a tree (1-path separators).
	StrategyTreeCentroid
	// StrategyCenterBag uses the center bag of a heuristic tree
	// decomposition (strong (width+1)-path separators, Theorem 7).
	StrategyCenterBag
	// StrategyPlanar uses Lipton–Tarjan fundamental cycles of a
	// shortest-path tree; requires an Embedding (Theorem 6(1)).
	StrategyPlanar
	// StrategyGreedy removes shortest-path-tree centroid paths from the
	// largest remaining component; works on any graph, k is measured.
	StrategyGreedy
)

// Options configures Decompose.
type Options struct {
	// Strategy defaults to StrategyAuto.
	Strategy Strategy
	// Embedding optionally provides a planar embedding of the graph.
	Embedding *Embedding
	// Certify re-verifies every separator against Definition 1 (slow).
	Certify bool
	// Metrics, when non-nil, receives per-level timings, separator path
	// counts and Dijkstra work accounting ("core.*", "shortest.*").
	Metrics *Metrics
	// Trace, when non-nil, receives the decomposition trace tree.
	Trace *DecompositionTrace
	// Workers bounds the construction worker pool: 0 means
	// runtime.GOMAXPROCS(0), 1 forces the serial reference build. Every
	// worker count produces a bit-identical decomposition.
	Workers int
}

func (o Options) strategy() (core.Strategy, error) {
	switch o.Strategy {
	case StrategyAuto:
		return core.Auto{}, nil
	case StrategyTreeCentroid:
		return core.TreeCentroid{}, nil
	case StrategyCenterBag:
		return core.CenterBag{}, nil
	case StrategyPlanar:
		return core.Planar{}, nil
	case StrategyGreedy:
		return core.Greedy{}, nil
	default:
		return nil, fmt.Errorf("pathsep: unknown strategy %d", int(o.Strategy))
	}
}

// Decompose builds the k-path separator decomposition tree of g.
func Decompose(g *Graph, opt Options) (*Decomposition, error) {
	strat, err := opt.strategy()
	if err != nil {
		return nil, err
	}
	return core.Decompose(g, core.Options{
		Strategy: strat,
		Rot:      opt.Embedding,
		Certify:  opt.Certify,
		Metrics:  opt.Metrics,
		Trace:    opt.Trace,
		Workers:  opt.Workers,
	})
}

// OracleMode selects the portal construction of the distance oracle.
type OracleMode int

const (
	// OracleExactCover uses per-vertex ε-covers with exact residual
	// distances: the Theorem 2 (1+ε) guarantee holds. Construction is
	// quadratic-ish; best below ~10k vertices.
	OracleExactCover OracleMode = iota
	// OraclePortals places a fixed number of evenly spaced portals per
	// separator path: scalable, stretch measured (≤3 guaranteed by the
	// closest-attachment entries).
	OraclePortals
)

// OracleOptions configures NewOracle.
type OracleOptions struct {
	// Epsilon is the ε of (1+ε); must be positive.
	Epsilon float64
	// Mode defaults to OracleExactCover.
	Mode OracleMode
	// PortalsPerPath bounds portals per path in OraclePortals mode
	// (0 = ceil(4/ε)).
	PortalsPerPath int
	// Metrics, when non-nil, receives build accounting ("oracle.*",
	// "shortest.*") and attaches query latency/portal histograms.
	Metrics *Metrics
	// Workers bounds the construction worker pool: 0 means
	// runtime.GOMAXPROCS(0), 1 forces the serial reference build. Every
	// worker count produces a bit-identical oracle encoding.
	Workers int
}

// NewOracle builds the Theorem 2 distance oracle over a decomposition.
func NewOracle(d *Decomposition, opt OracleOptions) (*Oracle, error) {
	mode := oracle.CoverExact
	if opt.Mode == OraclePortals {
		mode = oracle.CoverPortal
	}
	return oracle.Build(d, oracle.Options{
		Epsilon:        opt.Epsilon,
		Mode:           mode,
		PortalsPerPath: opt.PortalsPerPath,
		Metrics:        opt.Metrics,
		Workers:        opt.Workers,
	})
}

// QueryLabels answers an approximate distance query from two labels alone
// (the distributed distance-labeling scheme of Theorem 2).
func QueryLabels(a, b *Label) float64 { return oracle.QueryLabels(a, b) }

// DecodeFlatOracle parses a flat oracle produced by FlatOracle.Encode. On
// little-endian hosts with an 8-byte-aligned buffer the result serves
// straight from buf without rebuilding any per-label structure (zero
// copy); the caller must not mutate buf afterwards.
func DecodeFlatOracle(buf []byte) (*FlatOracle, error) { return oracle.DecodeFlat(buf) }

// RouterOptions configures NewRouter.
type RouterOptions struct {
	// Epsilon sizes the portal grid (default 0.25).
	Epsilon float64
	// PortalsPerPath overrides the portal count.
	PortalsPerPath int
	// Metrics, when non-nil, receives build accounting ("routing.*",
	// "shortest.*") and attaches hop and header-byte histograms.
	Metrics *Metrics
}

// NewRouter builds the compact routing scheme over a decomposition.
func NewRouter(d *Decomposition, opt RouterOptions) (*Router, error) {
	return routing.Build(d, routing.Options{
		Epsilon:        opt.Epsilon,
		PortalsPerPath: opt.PortalsPerPath,
		Metrics:        opt.Metrics,
	})
}

// SmallWorldModel selects the long-range contact distribution.
type SmallWorldModel = smallworld.Model

const (
	// SmallWorldPathSeparator is the paper's Theorem 3 distribution.
	SmallWorldPathSeparator = smallworld.ModelPathSeparator
	// SmallWorldClosestSeparator is the Note 2 variant.
	SmallWorldClosestSeparator = smallworld.ModelClosestSeparator
	// SmallWorldUniform links to uniform random vertices (baseline).
	SmallWorldUniform = smallworld.ModelUniform
	// SmallWorldNone adds no long links (baseline).
	SmallWorldNone = smallworld.ModelNone
)

// Augment draws one long-range contact per vertex from the model's
// distribution over the decomposition (Definition 3/4 of the paper).
func Augment(d *Decomposition, model SmallWorldModel, rng *rand.Rand) (*Augmented, error) {
	return smallworld.Augment(d, model, rng)
}

// SplitRand splits a parent generator into n independent child generators
// by drawing n seeds serially from the parent. Hand child i to subproblem
// i before fanning work out across goroutines: results then depend only
// on the parent seed, never on worker count or scheduling.
func SplitRand(parent *rand.Rand, n int) []*rand.Rand { return par.SplitRand(parent, n) }

// GreedyRouteStats runs greedy-routing trials over an augmented graph and
// reports delivery and hop statistics (Theorem 3's measured quantity).
func GreedyRouteStats(a *Augmented, trials int, rng *rand.Rand) smallworld.Stats {
	return smallworld.Experiment(a, trials, rng, nil)
}

// GreedyRouteStatsObserved is GreedyRouteStats with per-trial hop counts
// recorded into m's "smallworld.greedy_hops" histogram (nil m behaves
// like GreedyRouteStats).
func GreedyRouteStatsObserved(a *Augmented, trials int, rng *rand.Rand, m *Metrics) smallworld.Stats {
	return smallworld.ExperimentObserved(a, trials, rng, nil, m)
}

// Generators re-exported for convenience.

// NewGrid returns the rows x cols grid with its planar embedding.
func NewGrid(rows, cols int, w WeightFn, rng *rand.Rand) *Embedding {
	return embed.Grid(rows, cols, w, rng)
}

// NewApollonian returns a random stacked triangulation with embedding.
func NewApollonian(n int, w WeightFn, rng *rand.Rand) *Embedding {
	return embed.Apollonian(n, w, rng)
}

// NewRandomTree returns a uniform random recursive tree.
func NewRandomTree(n int, w WeightFn, rng *rand.Rand) *Graph {
	return graph.RandomTree(n, w, rng)
}

// NewKTree returns a random k-tree (treewidth exactly k).
func NewKTree(n, k int, w WeightFn, rng *rand.Rand) *Graph {
	return graph.KTree(n, k, w, rng)
}

// NewMesh3D returns the a x b x c mesh (the Section 5.3 example).
func NewMesh3D(a, b, c int, w WeightFn, rng *rand.Rand) *Graph {
	return graph.Mesh3D(a, b, c, w, rng)
}

// UnitWeights assigns weight 1 to every edge.
func UnitWeights() WeightFn { return graph.UnitWeights() }

// UniformWeights assigns independent uniform weights in [lo, hi).
func UniformWeights(lo, hi float64) WeightFn { return graph.UniformWeights(lo, hi) }

// CertifySeparator verifies a separator against Definition 1.
func CertifySeparator(g *Graph, s *Separator) error { return core.Certify(g, s) }

// Planarize computes a planar embedding of g with the DMP algorithm, or
// an error wrapping embed.ErrNonPlanar. Decompose calls this
// automatically for planar-looking graphs; use it directly to pre-compute
// and reuse embeddings.
func Planarize(g *Graph) (*Embedding, error) { return embed.Planarize(g) }

// WeightedSeparator computes a phased path separator halving the total
// VERTEX WEIGHT instead of the vertex count (the strengthening noted
// after Theorem 1). weights may be nil for the unweighted behaviour.
func WeightedSeparator(g *Graph, weights []float64) (*Separator, error) {
	return core.WeightedGreedy(g, weights, 0)
}

// CertifyWeightedSeparator verifies a separator against the
// vertex-weighted Definition 1 variant.
func CertifyWeightedSeparator(g *Graph, weights []float64, s *Separator) error {
	return core.CertifyWeighted(g, weights, s)
}

// MeshDecomposition is the Section 5.3 doubling-separator decomposition
// of a 3-D mesh.
type MeshDecomposition = doubling.Tree

// MeshOracle is the Theorem 8 distance oracle over a MeshDecomposition.
type MeshOracle = doubling.Oracle

// DecomposeMesh3D builds the recursive middle-plane decomposition of the
// a x b x c unit mesh — the paper's example of a graph with no bounded
// k-path separator that is nonetheless (1,2)-doubling separable.
func DecomposeMesh3D(a, b, c int) (*MeshDecomposition, error) {
	return doubling.DecomposeMesh3D(a, b, c)
}

// NewMeshOracle builds the Theorem 8 (1+ε)-approximate distance oracle.
func NewMeshOracle(d *MeshDecomposition, eps float64) (*MeshOracle, error) {
	return doubling.BuildOracle(d, eps)
}

// AugmentMesh draws Note 3 long-range contacts (ring landmarks on the
// separator planes) for greedy routing on the mesh.
func AugmentMesh(d *MeshDecomposition, rng *rand.Rand) *Augmented {
	return doubling.Augment(d, rng)
}

// TreeLabeling is an EXACT distance labeling for weighted trees
// (centroid decomposition; O(log n) entries per label): the base case of
// the paper's object-location program.
type TreeLabeling = labeling.TreeLabeling

// NewTreeLabeling builds exact distance labels for a weighted tree.
func NewTreeLabeling(g *Graph) (*TreeLabeling, error) {
	return labeling.BuildTree(g)
}

// FlatTreeLabeling is the frozen serving form of a TreeLabeling (the same
// CSR layout as FlatOracle); build one with TreeLabeling.Freeze(). Queries
// are exact, allocation-free and goroutine-safe.
type FlatTreeLabeling = labeling.FlatTree

// Float comparison helpers (re-exported from internal/core). Distances
// are float64 sums accumulated along different computation paths, so raw
// == / != on them is forbidden throughout the library (enforced by the
// floatcmp analyzer; see `make lint`). Use these named comparisons
// instead.

// SameDist reports exact equality of two distances; use only for values
// with the same provenance (one copied from the other).
func SameDist(a, b float64) bool { return core.SameDist(a, b) }

// IsZeroDist reports whether a distance is exactly zero (the same-vertex
// / degenerate sentinel).
func IsZeroDist(d float64) bool { return core.IsZeroDist(d) }

// ApproxDistEq reports equality up to relative tolerance eps.
func ApproxDistEq(a, b, eps float64) bool { return core.ApproxDistEq(a, b, eps) }

// WithinFactor reports a <= factor*b, the one-sided (1+ε)-style audit
// bound.
func WithinFactor(a, b, factor float64) bool { return core.WithinFactor(a, b, factor) }
