package pathsep_test

import (
	"math"
	"math/rand"
	"testing"

	"pathsep"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/shortest"
)

// TestGrandIntegration drives the full pipeline on a random planar graph
// handed over WITHOUT an embedding: DMP planarization inside Auto, a
// certified decomposition, the exact-cover oracle audited against its
// guarantee, label round-trips, compact routing with delivery and the
// stretch cap, and the small-world augmentation — every deliverable in
// one flow.
func TestGrandIntegration(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	// Random planar graph: Apollonian with 25% of edges dropped (keeps
	// planarity, creates cut vertices and irregular faces), embedding
	// deliberately discarded.
	full := embed.Apollonian(180, graph.UniformWeights(1, 5), rng).G
	b := pathsep.NewBuilder(full.N())
	full.Edges(func(u, v int, w float64) {
		if rng.Float64() < 0.75 {
			b.AddEdge(u, v, w)
		}
	})
	g := b.Build()

	dec, err := pathsep.Decompose(g, pathsep.Options{Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	if dec.MaxK > 5 {
		t.Errorf("maxK = %d on a planar graph; self-planarization should keep it small", dec.MaxK)
	}

	const eps = 0.2
	orc, err := pathsep.NewOracle(dec, pathsep.OracleOptions{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 150; trial++ {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		d := shortest.Dijkstra(g, u).Dist[v]
		est := orc.Query(u, v)
		if math.IsInf(d, 1) {
			if !math.IsInf(est, 1) {
				t.Fatalf("estimate %v for disconnected pair", est)
			}
			continue
		}
		if est < d-1e-9 || est > (1+eps)*d+1e-9 {
			t.Fatalf("oracle out of bounds: est %v, true %v", est, d)
		}
		if lbl := pathsep.QueryLabels(&orc.Labels[u], &orc.Labels[v]); u != v && lbl != est {
			t.Fatalf("label query %v != oracle %v", lbl, est)
		}
	}

	router, err := pathsep.NewRouter(dec, pathsep.RouterOptions{Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		s, tgt := rng.Intn(g.N()), rng.Intn(g.N())
		d := shortest.Dijkstra(g, s).Dist[tgt]
		path, ok := router.Route(s, tgt, 50*g.N())
		if math.IsInf(d, 1) {
			if ok && s != tgt {
				t.Fatalf("routed across components: %v", path)
			}
			continue
		}
		if !ok {
			t.Fatalf("no delivery %d -> %d", s, tgt)
		}
		if w := router.RouteWeight(path); d > 0 && w > 3*d+1e-9 {
			t.Fatalf("routing stretch %v > 3", w/d)
		}
	}

	aug, err := pathsep.Augment(dec, pathsep.SmallWorldPathSeparator, rng)
	if err != nil {
		t.Fatal(err)
	}
	st := pathsep.GreedyRouteStats(aug, 50, rng)
	if st.Delivered < 45 { // disconnected pairs are skipped, not failed
		t.Fatalf("small-world delivery: %+v", st)
	}
}
