# Tier-1+ verification for the pathsep repo.
#
#   make check      vet + lint + build + race tests + determinism + fuzz smoke + obs-overhead + parallel-speedup + query-serving + path-serving + serve-bench gates
#   make test       plain test run (the tier-1 gate)
#   make lint       run the repo-specific analyzers (cmd/pathsep-lint) over ./...
#   make determinism  full schedule-matrix byte-identity gate (GOMAXPROCS x workers x shuffled submission)
#   make fuzz-short short fuzz smoke of the graph/label/address decoders
#   make bench-obs  regenerate BENCH_obs.json (metrics on vs. off numbers)
#   make bench-parallel  parallel-build speedup gate (BENCH_parallel.json)
#   make bench-query     flat-vs-pointer query speedup gate (BENCH_query.json)
#   make bench-path      path-reporting serving gate (BENCH_path.json)
#   make bench-serve     in-process daemon self-load gate (BENCH_serve.json)

GO ?= go
FUZZTIME ?= 5s
# Cap per-input minimization so short smoke runs spend their budget
# mutating instead of shrinking the first large interesting input.
FUZZMINTIME ?= 50x

LINT_BIN := bin/pathsep-lint
LINT_SRC := $(wildcard cmd/pathsep-lint/*.go internal/analyzers/*.go internal/analyzers/*/*.go)

.PHONY: check test vet lint lint-json lint-stats determinism fuzz-short build race bench-overhead bench-obs bench-parallel bench-query bench-path bench-serve

check: vet lint build race determinism fuzz-short bench-overhead bench-parallel bench-query bench-path bench-serve

test:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The vettool binary is cached under bin/ and rebuilt only when analyzer
# sources change.
$(LINT_BIN): $(LINT_SRC)
	$(GO) build -o $(LINT_BIN) ./cmd/pathsep-lint

lint: $(LINT_BIN)
	$(GO) vet -vettool=$(LINT_BIN) ./...

# Machine-readable lint: one JSON diagnostic per line (plus ::error
# annotations under GITHUB_ACTIONS). CI uses this form; the NDJSON
# stream is mirrored to LINT_findings.ndjson (created even when clean),
# which CI uploads as an artifact alongside the BENCH_*.json set.
lint-json: $(LINT_BIN)
	./$(LINT_BIN) -json -out=LINT_findings.ndjson ./...

# Per-analyzer finding and suppression counts: the findings come from
# the same vet run as lint-json; suppressions are the exception-granting
# directives (//pathsep:detached, //pathsep:lease-bypass, the
# writes=views grant) counted in non-test library sources. Rising
# suppressions with flat findings means exceptions are doing an
# analyzer's job — worth a look in review.
lint-stats: $(LINT_BIN)
	./$(LINT_BIN) -stats ./...

build:
	$(GO) build ./...

race:
	$(GO) test -race ./...

# The runtime determinism gate: rebuild the oracle on three graph
# families across GOMAXPROCS {1,4}, workers {1,2,4,0} and shuffled task
# submission, and fail on any byte diff of the pointer or flat encodings.
determinism:
	DETERMINISM_GATE=1 $(GO) test -run TestDeterminismGate -v .

# Fuzz targets as pkg:Func pairs; adding one is a one-line change here.
FUZZ_TARGETS := \
	internal/graph:FuzzGraphIO \
	internal/oracle:FuzzDecodeLabel \
	internal/oracle:FuzzDecodeOracle \
	internal/oracle:FuzzDecodeFlat \
	internal/oracle:FuzzFlatRoundTrip \
	internal/routing:FuzzDecodeAddr \
	internal/serve:FuzzReloadImage

# Short coverage-guided runs of every fuzz target; seed corpora alone run
# in plain `go test`, this also mutates for FUZZTIME each.
fuzz-short:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; fn=$${t##*:}; \
		echo "$(GO) test -fuzz=$$fn ./$$pkg/"; \
		$(GO) test -fuzz=$$fn -fuzztime=$(FUZZTIME) -fuzzminimizetime=$(FUZZMINTIME) ./$$pkg/; \
	done

# The disabled-path gate: must report 0 allocs/op on QueryDisabled.
bench-overhead:
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchtime=1s .

bench-obs:
	EMIT_BENCH_OBS=1 $(GO) test -run TestEmitBenchObs -v .

# The parallel-build gate: workers=N must beat workers=1 by >= 1.5x on the
# 4k-vertex grid (ratio enforced only when GOMAXPROCS >= 4; narrower
# machines record the measurement with a "skipped": "single-core" marker).
bench-parallel:
	BENCH_PARALLEL_GATE=1 $(GO) test -run TestParallelBuildSpeedupGate -v .

# The query-serving gate: Flat.Query must beat Oracle.Query by >= 1.5x
# ns/op on the 4k-vertex grid and take 0 allocs/op; the measured numbers
# land in BENCH_query.json.
bench-query:
	BENCH_QUERY_GATE=1 $(GO) test -run TestQueryServingGate -v .

# The path-reporting gate: with a warm reused caller buffer Flat.QueryPath
# must allocate nothing and cost at most 2x a distance-only flat query
# (best of three paired rounds — scheduler noise only inflates). The
# measured numbers land in BENCH_path.json.
bench-path:
	BENCH_PATH_GATE=1 $(GO) test -run TestPathServingGate -v .

# The serving gate: stand up the pathsepd engine in-process, self-load it
# (concurrent GET /query then binary batches), and record QPS + latency
# percentiles in BENCH_serve.json; zero errors and a sane p99 required.
bench-serve:
	BENCH_SERVE_GATE=1 $(GO) test -run TestServeBenchGate -v .
