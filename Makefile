# Tier-1+ verification for the pathsep repo.
#
#   make check      vet + build + race tests + obs-overhead benchmark
#   make test       plain test run (the tier-1 gate)
#   make bench-obs  regenerate BENCH_obs.json (metrics on vs. off numbers)

GO ?= go

.PHONY: check test vet build race bench-overhead bench-obs

check: vet build race bench-overhead

test:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

race:
	$(GO) test -race ./...

# The disabled-path gate: must report 0 allocs/op on QueryDisabled.
bench-overhead:
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchtime=1s .

bench-obs:
	EMIT_BENCH_OBS=1 $(GO) test -run TestEmitBenchObs -v .
