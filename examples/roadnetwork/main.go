// Roadnetwork: a synthetic city road network (a planar grid with random
// diagonal shortcuts and travel-time weights), decomposed with the planar
// fundamental-cycle strategy, serving (1+ε)-approximate travel-time
// queries, with a stretch audit against exact Dijkstra.
//
// This is the workload the paper's object-location results target:
// planar-like networks where exact all-pairs storage is quadratic but
// separator labels stay logarithmic.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"pathsep"
	"pathsep/internal/embed"
	"pathsep/internal/shortest"
)

func main() {
	const side = 28 // 784 intersections
	rng := rand.New(rand.NewSource(42))

	// Travel times: arterial roads are fast (weight ~1), side streets
	// slow (~4).
	w := func(u, v int, r *rand.Rand) float64 {
		if u%side == side/2 || v%side == side/2 || u/side == side/2 {
			return 1 + r.Float64()
		}
		return 3 + 2*r.Float64()
	}
	city := embed.GridDiagonals(side, side, w, rng)
	g := city.G
	fmt.Printf("city: %d intersections, %d road segments\n", g.N(), g.M())

	start := time.Now()
	dec, err := pathsep.Decompose(g, pathsep.Options{
		Strategy:  pathsep.StrategyPlanar,
		Embedding: city,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decomposed in %v: depth %d, max %d separator paths per level\n",
		time.Since(start).Round(time.Millisecond), dec.Depth, dec.MaxK)

	start = time.Now()
	orc, err := pathsep.NewOracle(dec, pathsep.OracleOptions{
		Epsilon: 0.1,
		Mode:    pathsep.OraclePortals,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle built in %v: %d entries (%.1f per intersection)\n",
		time.Since(start).Round(time.Millisecond), orc.SpacePortals(),
		float64(orc.SpacePortals())/float64(g.N()))

	// Audit 200 random trips against exact Dijkstra.
	worst, sum, count := 1.0, 0.0, 0
	var oracleTime, dijkstraTime time.Duration
	for i := 0; i < 200; i++ {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		if u == v {
			continue
		}
		t0 := time.Now()
		est := orc.Query(u, v)
		oracleTime += time.Since(t0)
		t0 = time.Now()
		d := shortest.Dijkstra(g, u).Dist[v]
		dijkstraTime += time.Since(t0)
		if math.IsInf(d, 1) || pathsep.IsZeroDist(d) {
			continue
		}
		ratio := est / d
		if ratio > worst {
			worst = ratio
		}
		sum += ratio
		count++
	}
	fmt.Printf("audited %d trips: max stretch %.4f, mean %.4f\n", count, worst, sum/float64(count))
	fmt.Printf("per-query: oracle %v vs dijkstra %v (%.0fx faster)\n",
		(oracleTime / 200).Round(time.Microsecond), (dijkstraTime / 200).Round(time.Microsecond),
		float64(dijkstraTime)/float64(oracleTime))

	// Spot check one trip.
	u, v := 0, g.N()-1
	fmt.Printf("corner-to-corner travel time: approx %.1f, exact %.1f\n",
		orc.Query(u, v), shortest.Dijkstra(g, u).Dist[v])
}
