// Mesh3d: the Section 5.3 story end to end. A 3-D mesh (think rack/row/
// column coordinates of a data-center fabric) has NO bounded k-path
// separator — the paper proves a plane of Ω(n^{2/3}) vertices is needed —
// but its axis planes are isometric 2-D meshes of doubling dimension 2,
// so the (k,α)-doubling separator machinery (Theorem 8) still yields a
// (1+ε) distance oracle with small labels, and the Note 3 ring-landmark
// augmentation keeps greedy routing poly-logarithmic.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"pathsep"
	"pathsep/internal/hardness"
	"pathsep/internal/shortest"
)

func main() {
	const side = 8 // 512-node fabric
	rng := rand.New(rand.NewSource(5))

	// First, the negative half: path separators degrade.
	mesh := pathsep.NewMesh3D(side, side, side, pathsep.UnitWeights(), nil)
	k, err := hardness.MeasureGreedyK(mesh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%dx%dx%d mesh (n=%d): greedy path separator needs %d paths (n^(2/3) = %.0f)\n",
		side, side, side, mesh.N(), k, math.Pow(float64(mesh.N()), 2.0/3))

	// The positive half: the plane decomposition.
	dec, err := pathsep.DecomposeMesh3D(side, side, side)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plane decomposition: %d nodes, root plane %d vertices\n",
		len(dec.Nodes), len(dec.Nodes[0].Plane))

	orc, err := pathsep.NewMeshOracle(dec, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("doubling oracle: %d landmarks total, largest label %d\n",
		orc.SpaceLandmarks(), orc.MaxLabelLandmarks())

	// Audit stretch on random pairs.
	worst := 1.0
	for i := 0; i < 300; i++ {
		u, v := rng.Intn(mesh.N()), rng.Intn(mesh.N())
		if u == v {
			continue
		}
		d := shortest.Dijkstra(dec.G, u).Dist[v]
		if pathsep.IsZeroDist(d) {
			continue
		}
		if r := orc.Query(u, v) / d; r > worst {
			worst = r
		}
	}
	fmt.Printf("audited stretch: max %.4f (bound 1.2)\n", worst)

	// Note 3: ring-landmark augmentation + greedy routing.
	aug := pathsep.AugmentMesh(dec, rng)
	st := pathsep.GreedyRouteStats(aug, 200, rng)
	fmt.Printf("greedy routing with ring landmarks: mean %.1f hops, max %d (diameter %d, delivered %d/%d)\n",
		st.MeanHops, st.MaxHops, 3*(side-1), st.Delivered, st.Trials)
}
