// P2proute: compact routing in a peer-to-peer-style overlay. The overlay
// is a random 3-tree (bounded-treewidth graphs model structured overlay
// topologies); each peer holds only its routing table and knows targets
// by their short address labels. Packets are forwarded hop-by-hop; we
// audit delivery, route stretch, and the table/address sizes that make
// the scheme "compact".
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"pathsep"
	"pathsep/internal/shortest"
)

func main() {
	const peers = 600
	rng := rand.New(rand.NewSource(2026))

	// Link latencies 5..50 ms.
	overlay := pathsep.NewKTree(peers, 3, pathsep.UniformWeights(5, 50), rng)
	fmt.Printf("overlay: %d peers, %d links\n", overlay.N(), overlay.M())

	dec, err := pathsep.Decompose(overlay, pathsep.Options{Strategy: pathsep.StrategyCenterBag})
	if err != nil {
		log.Fatal(err)
	}
	router, err := pathsep.NewRouter(dec, pathsep.RouterOptions{Epsilon: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routing state: max table %d words, max address %d words, total %d words\n",
		router.MaxTableWords(), router.MaxAddrWords(), router.SpaceWords())
	fmt.Printf("(full routing tables would need %d words per peer)\n\n", peers)

	const trials = 400
	delivered, worst, sum, measured := 0, 1.0, 0.0, 0
	var worstPair [2]int
	for i := 0; i < trials; i++ {
		s, t := rng.Intn(peers), rng.Intn(peers)
		if s == t {
			delivered++
			continue
		}
		path, ok := router.Route(s, t, 50*peers)
		if !ok {
			fmt.Printf("UNDELIVERED %d -> %d\n", s, t)
			continue
		}
		delivered++
		d := shortest.Dijkstra(overlay, s).Dist[t]
		if w := router.RouteWeight(path); d > 0 && !math.IsInf(w, 1) {
			ratio := w / d
			sum += ratio
			measured++
			if ratio > worst {
				worst = ratio
				worstPair = [2]int{s, t}
			}
		}
	}
	fmt.Printf("delivered %d/%d packets\n", delivered, trials)
	fmt.Printf("latency stretch over %d measured pairs: mean %.3f, worst %.3f (peers %d -> %d)\n",
		measured, sum/float64(max(1, measured)), worst, worstPair[0], worstPair[1])

	// Show one route end to end.
	s, t := 17, peers-5
	path, _ := router.Route(s, t, 50*peers)
	fmt.Printf("\nsample route %d -> %d (%d hops, %.0f ms vs %.0f ms optimal):\n  %v\n",
		s, t, len(path)-1, router.RouteWeight(path), shortest.Dijkstra(overlay, s).Dist[t], path)
}
