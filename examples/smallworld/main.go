// Smallworld: reproduce the paper's Section 4 "small-worldization" on a
// weighted grid — augment each vertex with one long-range contact drawn
// from the separator-landmark distribution (Theorem 3), then compare
// greedy-routing hop counts against Kleinberg's harmonic distribution and
// a uniform baseline.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"pathsep"
	"pathsep/internal/smallworld"
)

func main() {
	const side = 24
	rng := rand.New(rand.NewSource(7))

	grid := pathsep.NewGrid(side, side, pathsep.UniformWeights(1, 4), rng)
	dec, err := pathsep.Decompose(grid.G, pathsep.Options{Embedding: grid})
	if err != nil {
		log.Fatal(err)
	}
	n := grid.G.N()
	fmt.Printf("weighted %dx%d grid (n=%d), decomposition maxK=%d depth=%d\n",
		side, side, n, dec.MaxK, dec.Depth)
	fmt.Printf("Theorem 3 reference k^2 log^2 n = %.0f hops (upper-bound shape)\n\n",
		float64(dec.MaxK*dec.MaxK)*math.Pow(math.Log2(float64(n)), 2))

	const trials = 300
	run := func(name string, a *pathsep.Augmented) {
		st := pathsep.GreedyRouteStats(a, trials, rand.New(rand.NewSource(99)))
		fmt.Printf("%-22s mean %6.1f hops, max %4d, delivered %d/%d\n",
			name, st.MeanHops, st.MaxHops, st.Delivered, st.Trials)
	}

	for _, model := range []pathsep.SmallWorldModel{
		pathsep.SmallWorldPathSeparator,
		pathsep.SmallWorldClosestSeparator,
		pathsep.SmallWorldUniform,
		pathsep.SmallWorldNone,
	} {
		a, err := pathsep.Augment(dec, model, rng)
		if err != nil {
			log.Fatal(err)
		}
		run(model.String(), a)
	}
	run("kleinberg (1/d^2)", smallworld.AugmentKleinbergGrid(grid.G, side, side, rng))

	fmt.Println("\nThe separator-landmark and Kleinberg models stay poly-logarithmic;")
	fmt.Println("'none' pays the full grid diameter and 'uniform' wastes its links at")
	fmt.Println("long range — exactly the Section 4 story, but for a WEIGHTED grid,")
	fmt.Println("where Kleinberg's lattice distribution has no guarantee.")
}
