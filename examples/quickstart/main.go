// Quickstart: build a small weighted graph, decompose it with k-path
// separators, and answer (1+ε)-approximate distance queries.
package main

import (
	"fmt"
	"log"

	"pathsep"
)

func main() {
	// A small road-like graph: two "towns" of a few intersections
	// connected by a highway.
	b := pathsep.NewBuilder(8)
	// Town A: vertices 0-3 in a square.
	b.AddEdge(0, 1, 1.0)
	b.AddEdge(1, 2, 1.0)
	b.AddEdge(2, 3, 1.0)
	b.AddEdge(3, 0, 1.0)
	// Town B: vertices 4-7 in a square.
	b.AddEdge(4, 5, 1.0)
	b.AddEdge(5, 6, 1.0)
	b.AddEdge(6, 7, 1.0)
	b.AddEdge(7, 4, 1.0)
	// Highway between the towns.
	b.AddEdge(2, 4, 5.0)
	g := b.Build()

	// Decompose: the Auto strategy picks a separator per recursion node
	// and certifies halving.
	dec, err := pathsep.Decompose(g, pathsep.Options{Certify: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decomposition: %d nodes, depth %d, max %d paths per separator\n",
		len(dec.Nodes), dec.Depth, dec.MaxK)

	// Build a distance oracle with provable (1+0.1) stretch.
	orc, err := pathsep.NewOracle(dec, pathsep.OracleOptions{Epsilon: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle: %d portal entries total, largest label %d portals\n",
		orc.SpacePortals(), orc.MaxLabelPortals())

	// Queries: 0 -> 6 goes 0-..-2, highway, 4-5-6 (or 4-7-6): 2+5+2 = 9.
	for _, pair := range [][2]int{{0, 6}, {1, 7}, {0, 3}, {5, 5}} {
		d := orc.Query(pair[0], pair[1])
		fmt.Printf("approx distance %d -> %d: %.2f\n", pair[0], pair[1], d)
	}

	// The oracle distributes into per-vertex labels: two labels alone
	// answer a query (Theorem 2's distance labeling scheme).
	d := pathsep.QueryLabels(&orc.Labels[0], &orc.Labels[6])
	fmt.Printf("label-only query 0 -> 6: %.2f\n", d)
}
