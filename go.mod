module pathsep

go 1.22
