// Differential gate for path reporting: every walk returned by
// Oracle.QueryPath / Flat.QueryPath must be a real walk in the graph
// (consecutive vertices joined by edges), start at u, end at v, and
// weigh exactly the reported (1+ε) distance — which in turn must bound
// the true distance from below (up to float tolerance) and, in exact
// mode, from above by (1+ε). The ground truth is the parent-tracking
// bidirectional Dijkstra. Pointer, frozen-flat and decoded-flat forms
// must agree vertex for vertex across worker counts, or the determinism
// story of the flat image is broken.
package pathsep_test

import (
	"math"
	"math/rand"
	"testing"

	"pathsep/internal/core"
	"pathsep/internal/graph"
	"pathsep/internal/oracle"
	"pathsep/internal/routing"
	"pathsep/internal/shortest"
)

func toIntPath(p []int32) []int {
	out := make([]int, len(p))
	for i, v := range p {
		out[i] = int(v)
	}
	return out
}

func samePath(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkWalk validates one reported walk against the graph and the
// reported distance, and returns the true distance for stretch checks.
func checkWalk(t *testing.T, g *graph.Graph, u, v int, dist float64, path []int32) float64 {
	t.Helper()
	truth, truthPath := shortest.BidirectionalPath(g, u, v)
	if math.IsInf(dist, 1) {
		if !math.IsInf(truth, 1) {
			t.Fatalf("(%d,%d): reported unreachable but true distance %v", u, v, truth)
		}
		if len(path) != 0 {
			t.Fatalf("(%d,%d): unreachable pair reported path %v", u, v, path)
		}
		return truth
	}
	if len(truthPath) > 0 {
		if tw, ok := shortest.PathLength(g, truthPath); !ok || !core.ApproxDistEq(tw, truth, 1e-9) {
			t.Fatalf("(%d,%d): BidirectionalPath witness weighs %v (ok=%v), distance says %v", u, v, tw, ok, truth)
		}
	}
	if len(path) == 0 {
		t.Fatalf("(%d,%d): finite distance %v with empty path", u, v, dist)
	}
	if int(path[0]) != u || int(path[len(path)-1]) != v {
		t.Fatalf("(%d,%d): path endpoints %d..%d", u, v, path[0], path[len(path)-1])
	}
	w, ok := shortest.PathLength(g, toIntPath(path))
	if !ok {
		t.Fatalf("(%d,%d): reported path %v steps off the graph's edges", u, v, path)
	}
	if !core.ApproxDistEq(w, dist, 1e-9) {
		t.Fatalf("(%d,%d): path weighs %v but reported distance is %v", u, v, w, dist)
	}
	if dist < truth-1e-9 {
		t.Fatalf("(%d,%d): reported %v under true distance %v", u, v, dist, truth)
	}
	return truth
}

func TestPathReportDifferential(t *testing.T) {
	const eps = 0.25
	for name, fam := range parallelFamilies(t) {
		fam := fam
		t.Run(name, func(t *testing.T) {
			dec, err := core.Decompose(fam.g, core.Options{Strategy: core.Auto{}, Rot: fam.rot})
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []oracle.Mode{oracle.CoverExact, oracle.CoverPortal} {
				modeName := mode.String()
				t.Run(modeName, func(t *testing.T) {
					var refPaths map[[2]int][]int32
					for _, workers := range []int{1, 2, 4, 0} {
						o, err := oracle.Build(dec, oracle.Options{Epsilon: eps, Mode: mode, Workers: workers})
						if err != nil {
							t.Fatal(err)
						}
						if !o.PathReporting() {
							t.Fatal("built oracle carries no path data")
						}
						fl, err := o.Freeze()
						if err != nil {
							t.Fatal(err)
						}
						if !fl.PathReporting() {
							t.Fatal("frozen image lost its path data")
						}
						fl2, err := oracle.DecodeFlat(fl.Encode())
						if err != nil {
							t.Fatal(err)
						}
						o2, err := oracle.Decode(o.Encode())
						if err != nil {
							t.Fatal(err)
						}

						n := fam.g.N()
						rng := rand.New(rand.NewSource(int64(97 + n)))
						pairs := [][2]int{{0, n - 1}, {n - 1, 0}, {3, 3}, {-1, 4}, {4, n}}
						for i := 0; i < 40; i++ {
							pairs = append(pairs, [2]int{rng.Intn(n), rng.Intn(n)})
						}
						if refPaths == nil {
							refPaths = make(map[[2]int][]int32)
						}
						var buf, buf2, buf3, buf4 []int32
						for _, pr := range pairs {
							u, v := pr[0], pr[1]
							var dist float64
							dist, buf, err = o.QueryPath(u, v, buf)
							if err != nil {
								t.Fatalf("(%d,%d) pointer QueryPath: %v", u, v, err)
							}
							if q := o.Query(u, v); !core.SameDist(dist, q) {
								t.Fatalf("(%d,%d): QueryPath distance %v != Query %v", u, v, dist, q)
							}
							var fdist float64
							fdist, buf2, err = fl.QueryPath(u, v, buf2)
							if err != nil {
								t.Fatalf("(%d,%d) flat QueryPath: %v", u, v, err)
							}
							if !core.SameDist(dist, fdist) {
								t.Fatalf("(%d,%d): flat distance %v != pointer %v", u, v, fdist, dist)
							}
							if !samePath(buf, buf2) {
								t.Fatalf("(%d,%d): flat path %v != pointer path %v", u, v, buf2, buf)
							}
							var ddist float64
							ddist, buf3, err = fl2.QueryPath(u, v, buf3)
							if err != nil {
								t.Fatalf("(%d,%d) decoded-flat QueryPath: %v", u, v, err)
							}
							if !core.SameDist(dist, ddist) || !samePath(buf, buf3) {
								t.Fatalf("(%d,%d): decoded image disagrees (%v %v vs %v %v)", u, v, ddist, buf3, dist, buf)
							}
							var pdist float64
							pdist, buf4, err = o2.QueryPath(u, v, buf4)
							if err != nil {
								t.Fatalf("(%d,%d) decoded-oracle QueryPath: %v", u, v, err)
							}
							if !core.SameDist(dist, pdist) || !samePath(buf, buf4) {
								t.Fatalf("(%d,%d): decoded oracle disagrees", u, v)
							}

							if u < 0 || v < 0 || u >= n || v >= n {
								if !math.IsInf(dist, 1) || len(buf) != 0 {
									t.Fatalf("(%d,%d): malformed ids reported %v %v", u, v, dist, buf)
								}
								continue
							}
							if u == v {
								if !core.IsZeroDist(dist) || len(buf) != 1 || int(buf[0]) != u {
									t.Fatalf("(%d,%d): self query reported %v %v", u, v, dist, buf)
								}
								continue
							}
							truth := checkWalk(t, fam.g, u, v, dist, buf)
							if mode == oracle.CoverExact && !math.IsInf(truth, 1) {
								if dist > (1+eps)*truth*(1+1e-9) {
									t.Fatalf("(%d,%d): exact-mode distance %v exceeds (1+ε)·%v", u, v, dist, truth)
								}
							}

							key := [2]int{u, v}
							if prev, ok := refPaths[key]; ok {
								if !samePath(prev, buf) {
									t.Fatalf("workers=%d: (%d,%d) path %v differs from reference %v", workers, u, v, buf, prev)
								}
							} else {
								refPaths[key] = append([]int32(nil), buf...)
							}
						}

						// Batch form: CSR segments must match the one-shot
						// answers.
						qp := []oracle.Pair{{U: 0, V: int32(n - 1)}, {U: 2, V: 2}, {U: 1, V: int32(n / 2)}}
						dists, verts, offs, err := fl.QueryPathBatch(qp, nil, nil, nil)
						if err != nil {
							t.Fatal(err)
						}
						for i, pr := range qp {
							var d float64
							d, buf, _ = fl.QueryPath(int(pr.U), int(pr.V), buf)
							if !core.SameDist(d, dists[i]) || !samePath(buf, verts[offs[i]:offs[i+1]]) {
								t.Fatalf("batch pair %d disagrees with QueryPath", i)
							}
						}
					}
				})
			}
		})
	}
}

// TestRoutedVsReportedPath cross-checks the two witnesses of the serving
// stack: the routed walk of the compact routing scheme and the reported
// path of the oracle must both realize distances within their combined
// stretch budgets of each other.
func TestRoutedVsReportedPath(t *testing.T) {
	fams := parallelFamilies(t)
	fam := fams["grid"]
	dec, err := core.Decompose(fam.g, core.Options{Strategy: core.Auto{}, Rot: fam.rot})
	if err != nil {
		t.Fatal(err)
	}
	o, err := oracle.Build(dec, oracle.Options{Epsilon: 0.25, Mode: oracle.CoverExact})
	if err != nil {
		t.Fatal(err)
	}
	r, err := routing.Build(dec, routing.Options{Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	n := fam.g.N()
	rng := rand.New(rand.NewSource(5))
	var buf []int32
	for i := 0; i < 25; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		var dist float64
		dist, buf, err = o.QueryPath(u, v, buf)
		if err != nil {
			t.Fatal(err)
		}
		truth := checkWalk(t, fam.g, u, v, dist, buf)
		routed, ok := r.Route(u, v, 4*n)
		if !ok {
			t.Fatalf("(%d,%d): routing failed to deliver", u, v)
		}
		rw := r.RouteWeight(routed)
		// Both walks overestimate the true distance by bounded stretch;
		// they need not be equal, but neither may undercut the truth and
		// the reported distance may not exceed the routed walk by more
		// than its own (1+ε) guarantee allows.
		if rw < truth-1e-9 {
			t.Fatalf("(%d,%d): routed weight %v under true distance %v", u, v, rw, truth)
		}
		if dist > (1.25)*rw*(1+1e-9) {
			t.Fatalf("(%d,%d): reported %v exceeds (1+ε)·routed %v", u, v, dist, rw)
		}
	}
}
