package pathsep_test

import (
	"math"
	"math/rand"
	"testing"

	"pathsep"
)

func TestQuickstartFlow(t *testing.T) {
	b := pathsep.NewBuilder(4)
	b.AddEdge(0, 1, 1.0)
	b.AddEdge(1, 2, 2.0)
	b.AddEdge(2, 3, 1.5)
	g := b.Build()
	dec, err := pathsep.Decompose(g, pathsep.Options{Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	orc, err := pathsep.NewOracle(dec, pathsep.OracleOptions{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if d := orc.Query(0, 3); math.Abs(d-4.5) > 0.45+1e-9 {
		t.Fatalf("Query(0,3) = %v, want ~4.5", d)
	}
}

func TestStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tree := pathsep.NewRandomTree(50, pathsep.UnitWeights(), rng)
	ktree := pathsep.NewKTree(50, 3, pathsep.UnitWeights(), rng)
	grid := pathsep.NewGrid(7, 7, pathsep.UnitWeights(), rng)

	cases := []struct {
		name string
		g    *pathsep.Graph
		opt  pathsep.Options
	}{
		{"auto-tree", tree, pathsep.Options{}},
		{"centroid", tree, pathsep.Options{Strategy: pathsep.StrategyTreeCentroid}},
		{"bag", ktree, pathsep.Options{Strategy: pathsep.StrategyCenterBag}},
		{"greedy", ktree, pathsep.Options{Strategy: pathsep.StrategyGreedy}},
		{"planar", grid.G, pathsep.Options{Strategy: pathsep.StrategyPlanar, Embedding: grid}},
		{"auto-embedded", grid.G, pathsep.Options{Embedding: grid}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.opt.Certify = true
			dec, err := pathsep.Decompose(tc.g, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			if dec.MaxK <= 0 {
				t.Fatal("no separators recorded")
			}
		})
	}
}

func TestBadStrategy(t *testing.T) {
	g := pathsep.NewRandomTree(5, pathsep.UnitWeights(), rand.New(rand.NewSource(1)))
	if _, err := pathsep.Decompose(g, pathsep.Options{Strategy: pathsep.Strategy(99)}); err == nil {
		t.Fatal("bad strategy accepted")
	}
}

func TestLabelsQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	grid := pathsep.NewGrid(6, 6, pathsep.UniformWeights(1, 2), rng)
	dec, err := pathsep.Decompose(grid.G, pathsep.Options{Embedding: grid})
	if err != nil {
		t.Fatal(err)
	}
	orc, err := pathsep.NewOracle(dec, pathsep.OracleOptions{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// The distributed form must agree with the oracle.
	for u := 0; u < 36; u += 5 {
		for v := 0; v < 36; v += 7 {
			if u == v {
				continue
			}
			got := pathsep.QueryLabels(&orc.Labels[u], &orc.Labels[v])
			want := orc.Query(u, v)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("labels disagree with oracle at (%d,%d)", u, v)
			}
		}
	}
}

func TestRouterFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	grid := pathsep.NewGrid(6, 6, pathsep.UnitWeights(), rng)
	dec, err := pathsep.Decompose(grid.G, pathsep.Options{Embedding: grid})
	if err != nil {
		t.Fatal(err)
	}
	router, err := pathsep.NewRouter(dec, pathsep.RouterOptions{Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	path, ok := router.Route(0, 35, 1000)
	if !ok || path[len(path)-1] != 35 {
		t.Fatalf("route failed: %v %v", path, ok)
	}
}

func TestSmallWorldFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	grid := pathsep.NewGrid(8, 8, pathsep.UnitWeights(), rng)
	dec, err := pathsep.Decompose(grid.G, pathsep.Options{Embedding: grid})
	if err != nil {
		t.Fatal(err)
	}
	aug, err := pathsep.Augment(dec, pathsep.SmallWorldPathSeparator, rng)
	if err != nil {
		t.Fatal(err)
	}
	st := pathsep.GreedyRouteStats(aug, 20, rng)
	if st.Delivered != 20 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMesh3DAndApollonian(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := pathsep.NewMesh3D(3, 3, 3, pathsep.UnitWeights(), rng)
	if m.N() != 27 {
		t.Fatal("mesh size")
	}
	a := pathsep.NewApollonian(30, pathsep.UnitWeights(), rng)
	if a.G.N() != 30 {
		t.Fatal("apollonian size")
	}
	dec, err := pathsep.Decompose(m, pathsep.Options{Strategy: pathsep.StrategyGreedy})
	if err != nil {
		t.Fatal(err)
	}
	sep := dec.Root().Sep
	if err := pathsep.CertifySeparator(dec.Root().Sub.G, sep); err != nil {
		t.Fatal(err)
	}
}

func TestPlanarizeFacade(t *testing.T) {
	g := pathsep.NewMesh3D(6, 6, 1, pathsep.UnitWeights(), nil) // a 2-D grid
	emb, err := pathsep.Planarize(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := pathsep.Planarize(pathsep.NewMesh3D(3, 3, 3, pathsep.UnitWeights(), nil)); err == nil {
		t.Fatal("3-D mesh is not planar")
	}
}

func TestWeightedSeparatorFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := pathsep.NewKTree(50, 2, pathsep.UniformWeights(1, 3), rng)
	w := make([]float64, 50)
	for i := range w {
		w[i] = rng.Float64() * 4
	}
	sep, err := pathsep.WeightedSeparator(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := pathsep.CertifyWeightedSeparator(g, w, sep); err != nil {
		t.Fatal(err)
	}
}

func TestMeshFacade(t *testing.T) {
	dec, err := pathsep.DecomposeMesh3D(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	orc, err := pathsep.NewMeshOracle(dec, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if d := orc.Query(0, 63); d < 9-1e-9 || d > 9*1.25+1e-9 {
		t.Fatalf("corner distance %v, want within [9, 11.25]", d)
	}
	rng := rand.New(rand.NewSource(7))
	aug := pathsep.AugmentMesh(dec, rng)
	st := pathsep.GreedyRouteStats(aug, 20, rng)
	if st.Delivered != 20 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTreeLabelingFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := pathsep.NewRandomTree(30, pathsep.UniformWeights(1, 3), rng)
	l, err := pathsep.NewTreeLabeling(g)
	if err != nil {
		t.Fatal(err)
	}
	// Exactness spot check against the oracle machinery.
	dec, err := pathsep.Decompose(g, pathsep.Options{Strategy: pathsep.StrategyTreeCentroid})
	if err != nil {
		t.Fatal(err)
	}
	orc, err := pathsep.NewOracle(dec, pathsep.OracleOptions{Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 30; u += 3 {
		for v := 0; v < 30; v += 4 {
			if math.Abs(l.Query(u, v)-orc.Query(u, v)) > 1e-9 {
				t.Fatalf("labeling and oracle disagree at (%d,%d)", u, v)
			}
		}
	}
}
