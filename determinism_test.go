// The runtime determinism gate (make determinism): every schedule the
// pipeline can experience — different GOMAXPROCS, different pool widths,
// shuffled task submission order — must produce byte-identical pointer
// and flat oracle encodings. The static side of the same invariant is the
// maporder/slotwrite/sortcmp analyzer trio; this gate catches whatever
// slips past a conservative static pass.
//
// The full matrix rebuilds each family dozens of times, so it only runs
// when DETERMINISM_GATE=1 is set (the determinism Make target); plain
// `go test` gets the cheap shuffled-submission smoke test.
package pathsep_test

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"testing"

	"pathsep/internal/core"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/oracle"
	"pathsep/internal/par"
)

// buildEncodings decomposes and builds one oracle and returns the pointer
// and flat encodings.
func buildEncodings(t *testing.T, g *graph.Graph, rot *embed.Rotation, mode oracle.Mode, workers int) (ptr, flat []byte) {
	t.Helper()
	dec, err := core.Decompose(g, core.Options{Strategy: core.Auto{}, Rot: rot, Workers: workers})
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	o, err := oracle.Build(dec, oracle.Options{Epsilon: 0.25, Mode: mode, Workers: workers})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	fz, err := o.Freeze()
	if err != nil {
		t.Fatalf("freeze: %v", err)
	}
	return o.Encode(), fz.Encode()
}

// TestDeterminismGate is the exhaustive schedule matrix. Enable with
// DETERMINISM_GATE=1 (make determinism).
func TestDeterminismGate(t *testing.T) {
	if os.Getenv("DETERMINISM_GATE") != "1" {
		t.Skip("set DETERMINISM_GATE=1 (make determinism) to run the full schedule matrix")
	}
	runMatrix(t, []int{1, 4}, []int{1, 2, 4, 0}, []int64{0, 0xC0FFEE, 7})
}

// TestDeterminismShuffleSmoke is the always-on slice of the matrix: one
// shuffled parallel schedule against the serial reference.
func TestDeterminismShuffleSmoke(t *testing.T) {
	runMatrix(t, []int{runtime.GOMAXPROCS(0)}, []int{1, 4}, []int64{0xC0FFEE})
}

func runMatrix(t *testing.T, gomaxprocs, workerCounts []int, seeds []int64) {
	defer par.SetShuffleSeed(0)
	for name, fam := range parallelFamilies(t) {
		for _, mode := range []oracle.Mode{oracle.CoverExact, oracle.CoverPortal} {
			modeName := "exact"
			if mode == oracle.CoverPortal {
				modeName = "portal"
			}
			// Reference: serial build, identity submission order.
			par.SetShuffleSeed(0)
			refPtr, refFlat := buildEncodings(t, fam.g, fam.rot, mode, 1)
			if len(refPtr) == 0 || len(refFlat) == 0 {
				t.Fatalf("%s/%s: empty reference encoding", name, modeName)
			}
			for _, gmp := range gomaxprocs {
				prev := runtime.GOMAXPROCS(gmp)
				for _, workers := range workerCounts {
					for _, seed := range seeds {
						par.SetShuffleSeed(seed)
						cfg := fmt.Sprintf("%s/%s gomaxprocs=%d workers=%d shuffle=%#x",
							name, modeName, gmp, workers, seed)
						ptr, flat := buildEncodings(t, fam.g, fam.rot, mode, workers)
						if !bytes.Equal(ptr, refPtr) {
							t.Errorf("%s: pointer encoding differs from serial reference (%d vs %d bytes)",
								cfg, len(ptr), len(refPtr))
						}
						if !bytes.Equal(flat, refFlat) {
							t.Errorf("%s: flat encoding differs from serial reference (%d vs %d bytes)",
								cfg, len(flat), len(refFlat))
						}
					}
				}
				runtime.GOMAXPROCS(prev)
			}
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}
