// Differential and race coverage for the flat serving form: Flat.Query,
// QueryBatch (every worker count) and both decode paths must return
// bit-identical answers to the pointer-walking Oracle.Query on every
// graph family and mode, and the whole surface must survive -race
// alongside metric snapshots.
package pathsep_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"pathsep"
	"pathsep/internal/core"
	"pathsep/internal/embed"
	"pathsep/internal/graph"
	"pathsep/internal/obs"
	"pathsep/internal/oracle"
)

// sameBits reports bit-for-bit float64 equality (the differential
// contract is stronger than epsilon equality).
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// freezeVariants returns the three Flat forms that must agree: the direct
// Freeze result, a zero-copy decode of its encoding, and a copying decode
// forced by a misaligned buffer.
func freezeVariants(t *testing.T, o *oracle.Oracle) map[string]*oracle.Flat {
	t.Helper()
	fl, err := o.Freeze()
	if err != nil {
		t.Fatalf("freeze: %v", err)
	}
	enc := fl.Encode()
	if len(enc) != fl.EncodedSize() {
		t.Fatalf("EncodedSize %d != len(Encode) %d", fl.EncodedSize(), len(enc))
	}
	zero, err := oracle.DecodeFlat(enc)
	if err != nil {
		t.Fatalf("zero-copy decode: %v", err)
	}
	shifted := make([]byte, len(enc)+1)
	copy(shifted[1:], enc)
	copied, err := oracle.DecodeFlat(shifted[1:]) // misaligned: copy path
	if err != nil {
		t.Fatalf("copy decode: %v", err)
	}
	return map[string]*oracle.Flat{"frozen": fl, "zerocopy": zero, "copied": copied}
}

// TestFlatQueryDifferential is the acceptance contract: across the grid,
// random-tree and mesh+apex families, both oracle modes, and workers in
// {1, 2, 4, 0}, the flat forms answer every pair (including self and
// out-of-range pairs) bit-identically to Oracle.Query.
func TestFlatQueryDifferential(t *testing.T) {
	for name, fam := range parallelFamilies(t) {
		for _, mode := range []oracle.Mode{oracle.CoverExact, oracle.CoverPortal} {
			modeName := "exact"
			if mode == oracle.CoverPortal {
				modeName = "portal"
			}
			dec, err := core.Decompose(fam.g, core.Options{Strategy: core.Auto{}, Rot: fam.rot})
			if err != nil {
				t.Fatalf("%s/%s: decompose: %v", name, modeName, err)
			}
			o, err := oracle.Build(dec, oracle.Options{Epsilon: 0.25, Mode: mode})
			if err != nil {
				t.Fatalf("%s/%s: build: %v", name, modeName, err)
			}
			n := fam.g.N()
			want := make([]float64, 0, (n+2)*(n+2))
			pairs := make([]oracle.Pair, 0, (n+2)*(n+2))
			for u := -1; u <= n; u++ {
				for v := -1; v <= n; v++ {
					want = append(want, o.Query(u, v))
					pairs = append(pairs, oracle.Pair{U: int32(u), V: int32(v)})
				}
			}

			for fname, fl := range freezeVariants(t, o) {
				for i, p := range pairs {
					got := fl.Query(int(p.U), int(p.V))
					if !sameBits(got, want[i]) {
						t.Fatalf("%s/%s/%s: Query(%d,%d) = %v, pointer oracle %v",
							name, modeName, fname, p.U, p.V, got, want[i])
					}
				}
				var out []float64
				for _, workers := range []int{1, 2, 4, 0} {
					prev := out
					out = fl.QueryBatchWorkers(pairs, out, workers)
					if len(out) != len(pairs) {
						t.Fatalf("%s/%s/%s: batch returned %d results for %d pairs",
							name, modeName, fname, len(out), len(pairs))
					}
					if prev != nil && &prev[0] != &out[0] {
						t.Fatalf("%s/%s/%s: workers=%d batch did not reuse the caller buffer",
							name, modeName, fname, workers)
					}
					for i := range out {
						if !sameBits(out[i], want[i]) {
							t.Fatalf("%s/%s/%s: workers=%d batch[%d] (%d,%d) = %v, pointer oracle %v",
								name, modeName, fname, workers, i, pairs[i].U, pairs[i].V, out[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestFlatDecodeRejectsCorruption flips header fields and truncates the
// encoding: every mutation must be rejected, never panic.
func TestFlatDecodeRejectsCorruption(t *testing.T) {
	fam := parallelFamilies(t)["grid"]
	dec, err := core.Decompose(fam.g, core.Options{Strategy: core.Auto{}, Rot: fam.rot})
	if err != nil {
		t.Fatal(err)
	}
	o, err := oracle.Build(dec, oracle.Options{Epsilon: 0.25, Mode: oracle.CoverPortal})
	if err != nil {
		t.Fatal(err)
	}
	fl, err := o.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	enc := fl.Encode()
	mutate := func(name string, f func([]byte) []byte) {
		buf := make([]byte, len(enc))
		copy(buf, enc)
		if _, err := oracle.DecodeFlat(f(buf)); err == nil {
			t.Errorf("%s: corrupted encoding accepted", name)
		}
	}
	mutate("bad magic", func(b []byte) []byte { b[0] = 0x00; return b })
	mutate("bad version", func(b []byte) []byte { b[1] = 99; return b })
	mutate("truncated", func(b []byte) []byte { return b[:len(b)-8] })
	mutate("inflated entry count", func(b []byte) []byte { b[40] ^= 0x40; return b })
	mutate("empty", func(b []byte) []byte { return nil })
}

// TestFlatQueryBatchRaceStress hammers Flat.Query and QueryBatch from
// several goroutines while another drains metrics snapshots — the -race
// acceptance test for the immutable serving form.
func TestFlatQueryBatchRaceStress(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	grid := embed.Grid(10, 10, graph.UniformWeights(1, 4), rng)
	reg := obs.New()
	dec, err := core.Decompose(grid.G, core.Options{Strategy: core.Auto{}, Rot: grid})
	if err != nil {
		t.Fatal(err)
	}
	o, err := oracle.Build(dec, oracle.Options{Epsilon: 0.25, Mode: oracle.CoverPortal})
	if err != nil {
		t.Fatal(err)
	}
	fl, err := o.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	fl.SetMetrics(reg)

	n := grid.G.N()
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
				if snap := reg.Snapshot(); snap.Gauges == nil {
					t.Error("snapshot lost its gauges")
					return
				}
			}
		}
	}()

	const goroutines = 8
	rngs := pathsep.SplitRand(rand.New(rand.NewSource(13)), goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			r := rngs[idx]
			pairs := make([]oracle.Pair, 64)
			var out []float64
			for round := 0; round < 40; round++ {
				if round%2 == 0 {
					for q := 0; q < 64; q++ {
						u, v := r.Intn(n+2)-1, r.Intn(n+2)-1
						if d := fl.Query(u, v); d < 0 {
							t.Errorf("Query(%d,%d) = %v", u, v, d)
							return
						}
					}
					continue
				}
				for p := range pairs {
					pairs[p] = oracle.Pair{U: int32(r.Intn(n+2) - 1), V: int32(r.Intn(n+2) - 1)}
				}
				out = fl.QueryBatchWorkers(pairs, out, 1+idx%4)
				for p := range out {
					if out[p] < 0 {
						t.Errorf("batch result %v for (%d,%d)", out[p], pairs[p].U, pairs[p].V)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	<-snapDone
}
